package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hotnoc"
	"hotnoc/server/wire"
)

// oldDaemon fakes a hotnocd predating the unified point model: its JSON
// decoder drops the unknown kind/reactive fields, so every submitted
// point is accepted and evaluated as periodic, and the echoed PointSpec
// carries no reactive payload.
func oldDaemon(t *testing.T) string {
	t.Helper()
	var points []wire.PointSpec
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points []struct {
				Config string `json:"config"`
				Scheme string `json:"scheme"`
				Blocks int    `json:"blocks"`
				// No kind, no reactive: an old daemon's request type.
			} `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("old daemon could not decode sweep: %v", err)
		}
		points = points[:0]
		for _, p := range req.Points {
			points = append(points, wire.PointSpec{Config: p.Config, Scheme: p.Scheme, Blocks: p.Blocks})
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(wire.SweepCreated{ID: "job-1", Points: len(points)})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for i, p := range points {
			msg := wire.OutcomeMsg{Index: i, Point: p, Built: wire.BuiltInfo{
				Config: p.Config, GridW: 4, GridH: 4, ClockHz: 1e9, StaticPeakC: 80, BlockCycles: 1000,
			}}
			data, _ := json.Marshal(msg)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", wire.EventOutcome, data)
		}
		fmt.Fprintf(w, "event: %s\ndata: {}\n\n", wire.EventDone)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(wire.JobInfo{ID: r.PathValue("id")})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestSweepDetectsKindSkew: a reactive point submitted to a daemon that
// silently runs it as periodic must surface an error, not hand the
// caller results of the wrong experiment. A pure periodic grid against
// the same daemon still streams fine.
func TestSweepDetectsKindSkew(t *testing.T) {
	c := New(oldDaemon(t))
	ctx := context.Background()

	pts := []hotnoc.SweepPoint{
		hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1),
		hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{Scheme: hotnoc.Rot(), TriggerC: 84}),
	}
	_, err := c.SweepAll(ctx, pts)
	if err == nil || !strings.Contains(err.Error(), "unified point model") {
		t.Fatalf("kind skew not detected (err %v)", err)
	}

	periodic := []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)}
	outs, err := c.SweepAll(ctx, periodic)
	if err != nil {
		t.Fatalf("periodic grid against an old daemon failed: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d outcomes, want 1", len(outs))
	}
}

// throttlingDaemon answers its first reject sweep submissions with 429
// (carrying retryAfter when non-empty) and then admits, recording every
// request's Authorization header.
func throttlingDaemon(t *testing.T, reject int, retryAfter string) (url string, attempts *int, auths *[]string) {
	t.Helper()
	var n int
	var seen []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		n++
		seen = append(seen, r.Header.Get("Authorization"))
		if n <= reject {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(wire.ErrorMsg{Error: "tenant is over its submit rate"})
			return
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(wire.SweepCreated{ID: "job-1", Points: 1})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL, &n, &seen
}

// TestRetryableError: a 429 surfaces as a typed *RetryableError with
// the parsed Retry-After, so callers can implement their own pacing.
func TestRetryableError(t *testing.T) {
	url, attempts, _ := throttlingDaemon(t, 1000, "7")
	c := New(url)
	_, err := c.StartSweep(context.Background(), []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)})
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("429 produced %T (%v), want *RetryableError", err, err)
	}
	if re.Status != http.StatusTooManyRequests {
		t.Fatalf("RetryableError.Status = %d, want 429", re.Status)
	}
	if re.RetryAfter != 7*time.Second {
		t.Fatalf("RetryableError.RetryAfter = %s, want 7s", re.RetryAfter)
	}
	if !strings.Contains(re.Error(), "submit rate") {
		t.Fatalf("error text %q drops the server's message", re.Error())
	}
	if *attempts != 1 {
		t.Fatalf("client without WithRetry submitted %d times, want 1", *attempts)
	}
}

// TestWithRetrySubmits: WithRetry(n) absorbs up to n retryable
// rejections with backoff and then succeeds; a non-retryable error is
// returned immediately.
func TestWithRetrySubmits(t *testing.T) {
	url, attempts, _ := throttlingDaemon(t, 2, "")
	c := New(url, WithRetry(3))
	pts := []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)}
	id, err := c.StartSweep(context.Background(), pts)
	if err != nil {
		t.Fatalf("retrying submit failed: %v", err)
	}
	if id != "job-1" {
		t.Fatalf("retried submit returned id %q, want job-1", id)
	}
	if *attempts != 3 {
		t.Fatalf("daemon saw %d submissions, want 3 (two rejections + success)", *attempts)
	}

	// More rejections than retries: the final RetryableError surfaces.
	url2, attempts2, _ := throttlingDaemon(t, 1000, "")
	c2 := New(url2, WithRetry(2))
	_, err = c2.StartSweep(context.Background(), pts)
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("exhausted retries produced %T (%v), want *RetryableError", err, err)
	}
	if *attempts2 != 3 {
		t.Fatalf("daemon saw %d submissions, want 3 (initial + 2 retries)", *attempts2)
	}
}

// TestWithRetryHonorsContext: a canceled context stops the backoff wait
// instead of sleeping it out.
func TestWithRetryHonorsContext(t *testing.T) {
	url, _, _ := throttlingDaemon(t, 1000, "3600")
	c := New(url, WithRetry(5))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.StartSweep(ctx, []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled retry returned %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry slept through the server's Retry-After despite context cancellation")
	}
}

// TestAPIKeyHeader: WithAPIKey attaches the Bearer credential to every
// request.
func TestAPIKeyHeader(t *testing.T) {
	url, _, auths := throttlingDaemon(t, 0, "")
	c := New(url, WithAPIKey("s3cret"))
	if _, err := c.StartSweep(context.Background(), []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)}); err != nil {
		t.Fatal(err)
	}
	if len(*auths) != 1 || (*auths)[0] != "Bearer s3cret" {
		t.Fatalf("daemon saw Authorization %v, want [Bearer s3cret]", *auths)
	}
}

// flakyTransport fails the first `failures` round-trips with a plain
// transport error (which net/http wraps in *url.Error, like a refused
// dial) and then delegates to the real transport.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, errors.New("connection reset by peer")
	}
	return http.DefaultTransport.RoundTrip(req)
}

func (f *flakyTransport) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestGetRetriesTransientTransportErrors: with WithRetry, idempotent
// GETs ride out transient transport failures; non-idempotent POSTs are
// never replayed on a transport error, with or without retries.
func TestGetRetriesTransientTransportErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(wire.Stats{Jobs: wire.JobCounts{Total: 7}})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	ft := &flakyTransport{failures: 2}
	c := New(ts.URL, WithRetry(3), WithHTTPClient(&http.Client{Transport: ft}))
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("GET through a twice-flaky transport failed: %v", err)
	}
	if st.Jobs.Total != 7 {
		t.Fatalf("stats.Jobs.Total = %d, want 7", st.Jobs.Total)
	}
	if ft.callCount() != 3 {
		t.Fatalf("transport saw %d calls, want 3 (two failures + success)", ft.callCount())
	}

	// Without WithRetry the first transport error is final.
	ft2 := &flakyTransport{failures: 1}
	c2 := New(ts.URL, WithHTTPClient(&http.Client{Transport: ft2}))
	if _, err := c2.Stats(context.Background()); err == nil {
		t.Fatal("GET without retries survived a transport error")
	}
	if ft2.callCount() != 1 {
		t.Fatalf("retry-less client called the transport %d times, want 1", ft2.callCount())
	}

	// POST is not idempotent: a transport error must not be replayed even
	// with retries configured — the sweep may already be running.
	ft3 := &flakyTransport{failures: 1000}
	c3 := New(ts.URL, WithRetry(3), WithHTTPClient(&http.Client{Transport: ft3}))
	_, err = c3.StartSweep(context.Background(), []hotnoc.SweepPoint{hotnoc.PeriodicPoint("A", hotnoc.Rot(), 1)})
	if err == nil {
		t.Fatal("POST through a dead transport succeeded")
	}
	if ft3.callCount() != 1 {
		t.Fatalf("transport saw %d POST attempts, want 1 — transport errors must not replay submissions", ft3.callCount())
	}
}
