// Package client is the typed Go SDK for the hotnocd daemon: the
// hotnoc.Lab experiment surface over HTTP, with sweep outcomes streamed
// back as server-sent events.
//
// Client satisfies hotnoc.Session, and Client.Sweep returns the same
// iter.Seq2[SweepOutcome, error] shape as Lab.Sweep — for periodic,
// reactive and mixed grids alike — so code written against the Lab,
// including every hotnoc CLI behind its -server flag, runs unchanged
// against a remote daemon:
//
//	c := client.New("http://localhost:7077", client.WithScale(8))
//	for out, err := range c.Sweep(ctx, pts) {
//		...
//	}
//
// Because JSON round-trips float64 bit-exactly, results obtained through
// a daemon are bitwise identical to an in-process run at the same scale.
//
// Daemons running with a tenants file require an API key on every
// request; set one with WithAPIKey (CLIs read it from -api-key or
// HOTNOC_API_KEY). A tenant over its submit rate or queued-job bound is
// answered with 429 + Retry-After, surfaced as a *RetryableError;
// WithRetry makes submissions absorb those transparently with bounded
// backoff.
//
// Remote outcomes carry a metadata-only Built: StaticPeakC, EnergyScale,
// BlockCycles, and a System holding just the grid dimensions and clock —
// what result consumers (tables, heat maps, period conversion) need. The
// full multi-megabyte simulation state never crosses the wire; callers
// that need it must build locally. Custom migration schemes cannot cross
// the wire either — points travel by scheme name and are resolved
// server-side.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"hotnoc"
	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
	"hotnoc/internal/geom"
	"hotnoc/server/wire"
)

// Client talks to one hotnocd daemon. It is safe for concurrent use.
type Client struct {
	base     string
	http     *http.Client
	scale    int
	apiKey   string
	retries  int
	progress func(hotnoc.Event)
}

// Option configures a Client at construction.
type Option func(*Client)

// WithScale sets the workload divisor requested for every sweep (0 means
// the server default of 1 = paper scale). The daemon keeps one Lab per
// scale, so clients at one scale share caches.
func WithScale(n int) Option {
	return func(c *Client) { c.scale = n }
}

// WithProgress registers a callback for the daemon's
// build/characterize/evaluate progress events, mirroring
// hotnoc.WithProgress. Delivery is serialized per sweep.
func WithProgress(fn func(hotnoc.Event)) Option {
	return func(c *Client) { c.progress = fn }
}

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default client has no timeout — sweep streams are
// long-lived; use context cancellation to bound calls.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithAPIKey authenticates every request as "Authorization: Bearer
// <key>" — required against a daemon running with a tenants file.
// Empty means unauthenticated (an open or anonymous-allowing daemon).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithRetry makes sweep submissions retry up to n times when the daemon
// answers with a retryable rejection (429 over-rate/over-queue, 503
// draining), sleeping the server's Retry-After hint — or an exponential
// backoff from 100ms, capped at 30s, when the server gave none —
// between attempts. Idempotent GETs (jobs, stats, builds, workers)
// likewise retry transient transport failures — connection refused or
// reset by a restarting daemon — with the same backoff. Requests with
// side effects are never replayed on a transport error; submission
// retries are safe only because a rejected submission registers no job.
func WithRetry(n int) Option {
	return func(c *Client) { c.retries = n }
}

// ErrInterrupted marks a sweep event stream that ended before its
// terminal done/error event — the daemon died, or the connection to it
// was cut mid-stream. Callers dispatching work across a fleet match it
// with errors.Is to distinguish a lost worker (re-dispatch elsewhere)
// from a genuine evaluation failure (give up).
var ErrInterrupted = errors.New("event stream ended without a terminal event")

// RetryableError is a rejection the caller may retry later: the daemon
// answered 429 (the tenant is over its submit rate or queued-job bound)
// or 503 (draining). RetryAfter carries the parsed Retry-After hint,
// zero when the server sent none.
type RetryableError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *RetryableError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("hotnocd: %s (retry after %s)", e.Message, e.RetryAfter)
	}
	return "hotnocd: " + e.Message
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:7077"). No connection is made until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

var _ hotnoc.Session = (*Client)(nil)

// NewSession returns the experiment session behind a CLI's flags: a
// remote daemon client when serverURL is non-empty, otherwise a local Lab
// built from the remaining options. In remote mode apiKey authenticates
// against a tenanted daemon (empty = unauthenticated), while workers and
// cacheDir are the daemon's business and are ignored; progress (when
// non-nil) receives pipeline events either way. Every hotnoc CLI routes
// its -server and -api-key flags through this one switch so the local
// and remote paths cannot drift apart.
func NewSession(serverURL, apiKey string, scale, workers int, cacheDir string, progress func(hotnoc.Event)) hotnoc.Session {
	if serverURL != "" {
		opts := []Option{WithScale(scale), WithAPIKey(apiKey)}
		if progress != nil {
			opts = append(opts, WithProgress(progress))
		}
		return New(serverURL, opts...)
	}
	opts := []hotnoc.LabOption{
		hotnoc.WithScale(scale),
		hotnoc.WithWorkers(workers),
		hotnoc.WithCacheDir(cacheDir),
	}
	if progress != nil {
		opts = append(opts, hotnoc.WithProgress(progress))
	}
	return hotnoc.NewLab(opts...)
}

// StartSweep submits a grid and returns the daemon's job id without
// waiting for any results. Most callers want Sweep, which submits and
// streams in one call; StartSweep is for working with jobs directly
// (attach later via the daemon's events endpoint, cancel via CancelJob).
func (c *Client) StartSweep(ctx context.Context, pts []hotnoc.SweepPoint) (string, error) {
	req := wire.SweepRequest{Scale: c.scale, Points: make([]wire.PointSpec, len(pts))}
	for i, p := range pts {
		req.Points[i] = wire.FromPoint(p)
	}
	var created wire.SweepCreated
	err := c.postJSON(ctx, "/v1/sweeps", req, &created)
	for attempt := 0; attempt < c.retries && err != nil; attempt++ {
		var re *RetryableError
		if !errors.As(err, &re) {
			break
		}
		if berr := retryBackoff(ctx, attempt, re.RetryAfter); berr != nil {
			return "", berr
		}
		err = c.postJSON(ctx, "/v1/sweeps", req, &created)
	}
	if err != nil {
		return "", err
	}
	return created.ID, nil
}

// Sweep submits the grid and streams outcomes in point order as they
// complete, exactly like Lab.Sweep. On error the sequence yields one
// final (zero outcome, error) pair and stops; breaking early cancels the
// server-side job.
func (c *Client) Sweep(ctx context.Context, pts []hotnoc.SweepPoint) iter.Seq2[hotnoc.SweepOutcome, error] {
	return func(yield func(hotnoc.SweepOutcome, error) bool) {
		if len(pts) == 0 {
			return
		}
		id, err := c.StartSweep(ctx, pts)
		if err != nil {
			yield(hotnoc.SweepOutcome{}, err)
			return
		}
		finished, err := c.streamJob(ctx, id, pts, yield)
		if err != nil {
			yield(hotnoc.SweepOutcome{}, err)
			return
		}
		if !finished {
			// The consumer broke out early: cancel the server-side job so
			// the daemon stops simulating for nobody. Best effort, on a
			// fresh context — the caller's may already be done.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _ = c.CancelJob(cctx, id)
		}
	}
}

// streamJob consumes a job's SSE stream, yielding outcomes and requiring
// exactly one per submitted point before the terminal done event. It
// returns finished=false when the consumer stopped the iteration early,
// and a non-nil error for transport or server-reported failures —
// including a daemon that echoed a different experiment kind than was
// submitted (a pre-unification daemon silently drops reactive fields).
func (c *Client) streamJob(ctx context.Context, id string, pts []hotnoc.SweepPoint, yield func(hotnoc.SweepOutcome, error) bool) (finished bool, _ error) {
	want := len(pts)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sweeps/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}

	// Remote outcomes of one configuration share one metadata-only Built,
	// mirroring how Lab outcomes share one calibrated build.
	builts := map[string]*chipcfg.Built{}
	next := 0 // expected outcome index, to verify SSE point order

	rd := bufio.NewReader(resp.Body)
	var event string
	var data bytes.Buffer
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return false, fmt.Errorf("client: job %s: %w", id, ErrInterrupted)
			}
			return false, fmt.Errorf("client: job %s: %w", id, err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event == "" && data.Len() == 0 {
				continue
			}
			done, err := c.dispatch(event, data.Bytes(), pts, builts, &next, yield)
			if err != nil {
				return false, err
			}
			switch done {
			case streamDone:
				// A done event with outcomes missing means the daemon's
				// log was truncated (or a version-skewed server); a short
				// result must be an error, not a silently partial grid.
				if next != want {
					return false, fmt.Errorf("client: job %s: done after %d of %d outcomes", id, next, want)
				}
				return true, nil
			case streamStopped:
				return false, nil
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
}

type streamState int

const (
	streamLive streamState = iota
	streamDone
	streamStopped
)

// dispatch handles one complete SSE frame.
func (c *Client) dispatch(event string, data []byte, pts []hotnoc.SweepPoint, builts map[string]*chipcfg.Built, next *int, yield func(hotnoc.SweepOutcome, error) bool) (streamState, error) {
	switch event {
	case wire.EventProgress:
		if c.progress == nil {
			return streamLive, nil
		}
		var m wire.EventMsg
		if err := json.Unmarshal(data, &m); err != nil {
			return streamLive, fmt.Errorf("client: bad progress event: %w", err)
		}
		c.progress(m.Event())
	case wire.EventOutcome:
		var m wire.OutcomeMsg
		if err := json.Unmarshal(data, &m); err != nil {
			return streamLive, fmt.Errorf("client: bad outcome event: %w", err)
		}
		if m.Index != *next {
			return streamLive, fmt.Errorf("client: outcome %d arrived out of order (want %d)", m.Index, *next)
		}
		// A daemon predating the unified point model silently drops the
		// reactive fields and evaluates the point as periodic; the kind it
		// echoes back betrays that, so fail loudly instead of handing the
		// caller results of the wrong experiment.
		if m.Index < len(pts) {
			sent, got := pts[m.Index].Kind() == hotnoc.KindReactive, m.Point.Kind == wire.KindReactive
			if sent != got {
				echoed := m.Point.Kind
				if echoed == "" {
					echoed = wire.KindPeriodic
				}
				return streamLive, fmt.Errorf(
					"client: outcome %d came back %s but point was submitted as %s (daemon predates the unified point model?)",
					m.Index, echoed, pts[m.Index].Kind())
			}
		}
		*next++
		if !yield(outcomeFromMsg(m, builts), nil) {
			return streamStopped, nil
		}
	case wire.EventError:
		var m wire.ErrorMsg
		if err := json.Unmarshal(data, &m); err != nil {
			return streamLive, fmt.Errorf("client: bad error event: %w", err)
		}
		return streamLive, m.Err()
	case wire.EventDone:
		return streamDone, nil
	}
	return streamLive, nil
}

// outcomeFromMsg rebuilds a SweepOutcome from the wire, fabricating (and
// sharing per configuration) the metadata-only Built.
func outcomeFromMsg(m wire.OutcomeMsg, builts map[string]*chipcfg.Built) hotnoc.SweepOutcome {
	b, ok := builts[m.Built.Config]
	if !ok {
		b = &chipcfg.Built{
			System: &core.System{
				Grid:    geom.NewGrid(m.Built.GridW, m.Built.GridH),
				ClockHz: m.Built.ClockHz,
			},
			EnergyScale: m.Built.EnergyScale,
			StaticPeakC: m.Built.StaticPeakC,
			BlockCycles: m.Built.BlockCycles,
		}
		builts[m.Built.Config] = b
	}
	p, err := m.Point.Point()
	if err != nil {
		// A scheme the client cannot resolve still names itself; result
		// consumers key on the name only.
		p = hotnoc.SweepPoint{
			Config:                 m.Point.Config,
			Scheme:                 hotnoc.Scheme{Name: m.Point.Scheme},
			Blocks:                 m.Point.Blocks,
			ExcludeMigrationEnergy: m.Point.ExcludeMigrationEnergy,
		}
		if m.Point.Reactive != nil {
			p.Reactive = &hotnoc.ReactiveConfig{
				Scheme:       p.Scheme,
				TriggerC:     m.Point.Reactive.TriggerC,
				SimBlocks:    m.Point.Reactive.SimBlocks,
				WarmupBlocks: m.Point.Reactive.WarmupBlocks,
				SensorQuantC: m.Point.Reactive.SensorQuantC,
				Dt:           m.Point.Reactive.Dt,
				PeaksEvery:   m.Point.Reactive.PeaksEvery,
			}
		}
	}
	return hotnoc.SweepOutcome{Point: p, Built: b, Result: m.Result, Reactive: m.Reactive}
}

// SweepAll is Sweep collected into a slice.
func (c *Client) SweepAll(ctx context.Context, pts []hotnoc.SweepPoint) ([]hotnoc.SweepOutcome, error) {
	out := make([]hotnoc.SweepOutcome, 0, len(pts))
	for o, err := range c.Sweep(ctx, pts) {
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Figure1 regenerates Figure 1 of the paper through the daemon; see
// Lab.Figure1. The aggregation is hotnoc.Figure1FromOutcomes, shared with
// the Lab, so the result is bitwise identical to an in-process run at the
// same scale.
func (c *Client) Figure1(ctx context.Context, configs []string) (*hotnoc.Figure1Result, error) {
	if configs == nil {
		configs = []string{"A", "B", "C", "D", "E"}
	}
	outs, err := c.SweepAll(ctx, hotnoc.SweepGrid(configs, hotnoc.Schemes(), nil))
	if err != nil {
		return nil, err
	}
	return hotnoc.Figure1FromOutcomes(configs, outs), nil
}

// PeriodSweep regenerates the migration-period study through the daemon;
// see Lab.PeriodSweep.
func (c *Client) PeriodSweep(ctx context.Context, config string, scheme hotnoc.Scheme, blocks []int) ([]hotnoc.PeriodPoint, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 4, 8}
	}
	outs, err := c.SweepAll(ctx, hotnoc.SweepGrid([]string{config}, []hotnoc.Scheme{scheme}, blocks))
	if err != nil {
		return nil, err
	}
	return hotnoc.PeriodPointsFromOutcomes(outs), nil
}

// MigrationEnergy regenerates the migration-energy ablation through the
// daemon; see Lab.MigrationEnergy.
func (c *Client) MigrationEnergy(ctx context.Context, config string) ([]hotnoc.EnergyStudy, error) {
	outs, err := c.SweepAll(ctx, hotnoc.MigrationEnergyGrid(config))
	if err != nil {
		return nil, err
	}
	return hotnoc.EnergyStudiesFromOutcomes(outs), nil
}

// Reactive evaluates threshold-triggered migration configurations on one
// chip configuration through the daemon; see Lab.Reactive. The
// configurations travel as reactive grid points — schemes by name,
// thresholds and horizons by value — and the daemon shares NoC
// characterizations with every periodic sweep at the same scale, so the
// results are bitwise identical to an in-process Lab.Reactive.
func (c *Client) Reactive(ctx context.Context, config string, cfgs []hotnoc.ReactiveConfig) ([]hotnoc.ReactiveResult, error) {
	return hotnoc.SweepReactive(ctx, c, config, cfgs)
}

// Placement fetches one configuration's thermally-aware placement report
// from the daemon; see Lab.Placement.
func (c *Client) Placement(ctx context.Context, config string) (*hotnoc.PlacementReport, error) {
	scale := c.scale
	if scale <= 0 {
		scale = 1
	}
	var rep hotnoc.PlacementReport
	if err := c.getJSON(ctx, fmt.Sprintf("/v1/builds/%s?scale=%d", url.PathEscape(config), scale), &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Jobs lists the daemon's jobs in creation order.
func (c *Client) Jobs(ctx context.Context) ([]wire.JobInfo, error) {
	var list wire.JobList
	if err := c.getJSON(ctx, "/v1/jobs", &list); err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// Job returns one job's state.
func (c *Client) Job(ctx context.Context, id string) (wire.JobInfo, error) {
	var info wire.JobInfo
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &info)
	return info, err
}

// JobProgress is the live-introspection slice of a job's state: how far
// it is, what pipeline stage it is in, and the daemon's ETA estimate.
type JobProgress struct {
	// State is the job's lifecycle state (wire.JobQueued, JobRunning,
	// JobDone, JobFailed, JobCanceled).
	State string
	// Stage is the pipeline stage a running job most recently entered
	// ("build", "characterize", "evaluate"); empty otherwise.
	Stage string
	// Done and Total count streamed outcomes against the submitted grid.
	Done, Total int
	// EtaSec is the daemon's completion estimate in seconds: queue-pace
	// extrapolation while queued, own-pace extrapolation while running;
	// zero when the daemon has nothing to extrapolate from.
	EtaSec float64
}

// JobProgress polls one job's live progress — a convenience over Job
// for progress bars and watch loops.
func (c *Client) JobProgress(ctx context.Context, id string) (JobProgress, error) {
	info, err := c.Job(ctx, id)
	if err != nil {
		return JobProgress{}, err
	}
	return JobProgress{
		State:  info.State,
		Stage:  info.Stage,
		Done:   info.Done,
		Total:  info.Points,
		EtaSec: info.EtaSec,
	}, nil
}

// CancelJob cancels a running job (its sweep context is canceled and its
// event stream terminates with an error event) or forgets a finished one.
func (c *Client) CancelJob(ctx context.Context, id string) (wire.JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return wire.JobInfo{}, err
	}
	var info wire.JobInfo
	err = c.do(req, &info)
	return info, err
}

// Stats returns the daemon's job counts and per-Lab counters: decodes,
// characterization cache hits/misses, worker utilization. Against a
// coordinator the counters aggregate the whole fleet.
func (c *Client) Stats(ctx context.Context) (wire.Stats, error) {
	var st wire.Stats
	err := c.getJSON(ctx, "/v1/stats", &st)
	return st, err
}

// Workers lists a coordinator's live fleet members. A plain daemon (not
// started with -coordinator) has no fleet and answers 404.
func (c *Client) Workers(ctx context.Context) ([]wire.WorkerInfo, error) {
	var list wire.WorkerList
	if err := c.getJSON(ctx, "/v1/workers", &list); err != nil {
		return nil, err
	}
	return list.Workers, nil
}

// RegisterWorker announces a worker daemon to a coordinator. The call is
// idempotent by URL and doubles as the heartbeat: a worker re-POSTs
// within the returned lease to stay in the fleet, and a lapsed lease
// drops it. When the coordinator runs with a fleet secret, it must be
// supplied via WithAPIKey.
func (c *Client) RegisterWorker(ctx context.Context, reg wire.WorkerRegistration) (wire.WorkerLease, error) {
	var lease wire.WorkerLease
	err := c.postJSON(ctx, "/v1/workers", reg, &lease)
	return lease, err
}

// DeregisterWorker removes a worker from the fleet ahead of its lease
// expiry — the clean-shutdown path, so the coordinator re-dispatches
// immediately instead of waiting out the lease.
func (c *Client) DeregisterWorker(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/workers/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, v)
}

func (c *Client) postJSON(ctx context.Context, path string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, v)
}

// authorize attaches the client's API key as a Bearer credential.
func (c *Client) authorize(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
}

func (c *Client) do(req *http.Request, v any) error {
	c.authorize(req)
	resp, err := c.http.Do(req)
	// Idempotent GETs absorb transient transport failures — a daemon
	// restarting mid-poll refuses or resets connections for a moment —
	// under the same retry budget and backoff as sweep submission.
	// Nothing with side effects is ever replayed on a transport error.
	for attempt := 0; attempt < c.retries && req.Method == http.MethodGet && transientNetError(err); attempt++ {
		if berr := retryBackoff(req.Context(), attempt, 0); berr != nil {
			return berr
		}
		resp, err = c.http.Do(req)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// transientNetError reports whether err is a transport-level failure
// worth retrying: the request never produced a response (connection
// refused, reset, DNS hiccup) and the cause was not the caller's own
// context ending.
func transientNetError(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// retryBackoff sleeps before retry number attempt: the server's hint
// when one was given, else an exponential backoff from 100ms capped at
// 30s. Returns ctx's error when the context ends first.
func retryBackoff(ctx context.Context, attempt int, hint time.Duration) error {
	delay := hint
	if delay <= 0 {
		delay = min(100*time.Millisecond<<attempt, 30*time.Second)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(delay):
		return nil
	}
}

// decodeError turns a non-2xx response into an error, preferring the
// server's ErrorMsg body. 429 and 503 become *RetryableError carrying
// the parsed Retry-After hint.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var em wire.ErrorMsg
	if json.Unmarshal(body, &em) == nil && em.Error != "" {
		msg = em.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		re := &RetryableError{Status: resp.StatusCode, Message: fmt.Sprintf("%s (%s)", msg, resp.Status)}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			re.RetryAfter = time.Duration(secs) * time.Second
		}
		return re
	}
	return fmt.Errorf("hotnocd: %s (%s)", msg, resp.Status)
}
