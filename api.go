// Package hotnoc reproduces "Hotspot Prevention Through Runtime
// Reconfiguration in Network-On-Chip" (Link & Vijaykrishnan, DATE 2005):
// a Network-on-Chip running an LDPC decoder periodically migrates its
// logical workload plane by an algebraic transformation — rotation,
// mirroring or translation — so hotspot-inducing computation moves around
// the die and the thermal profile flattens.
//
// The package is a façade over the full simulation stack:
//
//   - internal/geom       plane transformations (Table 1) and permutations
//   - internal/floorplan  4.36 mm²-per-PE mesh floorplans
//   - internal/thermal    HotSpot-style RC thermal model
//   - internal/power      160 nm activity-based power + leakage
//   - internal/noc        cycle-accurate wormhole mesh simulator
//   - internal/ldpc       min-sum LDPC codec
//   - internal/appmap     the decoder distributed across PEs as NoC traffic
//   - internal/place      thermally-aware simulated-annealing placement
//   - internal/core       migration schemes, phased state transfer,
//     I/O address translation, runtime manager
//   - internal/chipcfg    the paper's test-chip configurations A-E
//
// Typical use — a Lab is the session handle that owns the build cache and
// the cross-run characterization cache, and streams sweep results:
//
//	lab := hotnoc.NewLab(hotnoc.WithScale(8), hotnoc.WithCacheDir(".hotnoc-cache"))
//	pts := hotnoc.SweepGrid([]string{"A", "E"}, hotnoc.Schemes(), []int{1, 4, 8})
//	for out, err := range lab.Sweep(ctx, pts) {
//		if err != nil {
//			log.Fatal(err)
//		}
//		fmt.Printf("%s/%s: %.2f°C reduction\n",
//			out.Point.Config, out.Point.Scheme.Name, out.Result.ReductionC)
//	}
//
// A sweep grid is not limited to the paper's periodic policy: periodic
// and reactive (threshold-triggered) points mix freely in one grid, share
// NoC characterizations per (config, scheme), and stream back in point
// order with the result arm matching each point's kind:
//
//	pts := []hotnoc.SweepPoint{
//		hotnoc.PeriodicPoint("A", hotnoc.XYShift(), 4),
//		hotnoc.ReactivePoint("A", hotnoc.ReactiveConfig{Scheme: hotnoc.XYShift(), TriggerC: 84}),
//	}
//	for out, err := range lab.Sweep(ctx, pts) {
//		if err != nil {
//			log.Fatal(err)
//		}
//		switch out.Point.Kind() {
//		case hotnoc.KindReactive:
//			fmt.Printf("reactive: peak %.2f°C, %d migrations\n",
//				out.Reactive.PeakC, out.Reactive.Migrations)
//		default:
//			fmt.Printf("periodic: %.2f°C reduction\n", out.Result.ReductionC)
//		}
//	}
//
// Re-running the sweep — in the same process or in a fresh one pointed at
// the same cache directory — skips the cycle-accurate NoC stage entirely
// and reproduces the results bit for bit. One-shot evaluations can still
// go through the raw System:
//
//	built, _ := hotnoc.BuildConfig("A", 1)
//	res, _ := built.System.Run(hotnoc.RunConfig{Scheme: hotnoc.XYShift()})
//	fmt.Printf("peak %.2f°C -> %.2f°C\n", res.BaselinePeakC, res.MigratedPeakC)
package hotnoc

import (
	"context"
	"iter"

	"hotnoc/internal/chipcfg"
	"hotnoc/internal/core"
)

// Re-exported core types, so downstream users need only this package.
type (
	// Scheme is a migration policy (one of the paper's five).
	Scheme = core.Scheme
	// RunConfig selects the scheme, migration period and ablations for a
	// System.Run evaluation.
	RunConfig = core.RunConfig
	// RunResult is the baseline-versus-migrated comparison for one run.
	RunResult = core.RunResult
	// System is a fully wired test chip (workload, NoC, thermal model,
	// migration machinery).
	System = core.System
	// Spec declares a test-chip configuration.
	Spec = chipcfg.Spec
	// Built is a calibrated, ready-to-run configuration.
	Built = chipcfg.Built
	// ReactiveConfig configures threshold-triggered (sensor-driven)
	// migration, the library's extension of the paper's periodic policy.
	ReactiveConfig = core.ReactiveConfig
	// ReactiveResult summarises a reactive run.
	ReactiveResult = core.ReactiveResult
	// Characterization is the deterministic outcome of simulating one
	// scheme's full orbit on the cycle-accurate NoC; it feeds any number
	// of periodic (System.Evaluate) or reactive (System.EvaluateReactive)
	// evaluations, and is what Lab caches across runs.
	Characterization = core.Characterization
)

// The paper's five migration schemes.
var (
	Rot        = core.Rot
	XMirror    = core.XMirrorScheme
	XYMirror   = core.XYMirrorScheme
	RightShift = core.RightShift
	XYShift    = core.XYShift
)

// Schemes returns all five schemes in the paper's Figure 1 order.
func Schemes() []Scheme { return core.AllSchemes() }

// SchemeByName resolves a scheme from a CLI-style name such as "rot" or
// "x-y shift".
func SchemeByName(name string) (Scheme, error) { return core.SchemeByName(name) }

// Configs returns the five test-chip configuration specs (A-E).
func Configs() []Spec { return chipcfg.Specs() }

// ConfigByName returns one configuration spec by letter.
func ConfigByName(name string) (Spec, error) { return chipcfg.ByName(name) }

// Session is the experiment surface shared by a local Lab and a remote
// client talking to a hotnocd daemon: streaming grid sweeps — periodic,
// reactive or mixed — plus the paper's derived studies. The six CLIs
// program against Session, so a -server flag swaps an in-process Lab for
// a remote daemon without changing anything else; *Lab and the client
// package's *Client both satisfy it. Lab-only facilities — raw Build
// access, decode counters — are not part of Session because a remote
// daemon does not expose them (the daemon's counters live on /v1/stats).
type Session interface {
	// Sweep streams grid outcomes in point order; see Lab.Sweep. Grids may
	// mix periodic and reactive points freely.
	Sweep(ctx context.Context, pts []SweepPoint) iter.Seq2[SweepOutcome, error]
	// SweepAll is Sweep collected into a slice.
	SweepAll(ctx context.Context, pts []SweepPoint) ([]SweepOutcome, error)
	// Figure1, PeriodSweep and MigrationEnergy reproduce the paper's
	// studies; see the Lab methods of the same names.
	Figure1(ctx context.Context, configs []string) (*Figure1Result, error)
	PeriodSweep(ctx context.Context, config string, scheme Scheme, blocks []int) ([]PeriodPoint, error)
	MigrationEnergy(ctx context.Context, config string) ([]EnergyStudy, error)
	// Reactive evaluates threshold-triggered configurations on one chip
	// configuration, in input order; see Lab.Reactive.
	Reactive(ctx context.Context, config string, cfgs []ReactiveConfig) ([]ReactiveResult, error)
	// Placement reports one configuration's thermally-aware static
	// placement; see Lab.Placement.
	Placement(ctx context.Context, config string) (*PlacementReport, error)
}

var _ Session = (*Lab)(nil)

// BuildConfig assembles and calibrates a configuration. scale divides the
// workload size for quick runs (1 = the full paper-scale configuration;
// 8 is a good smoke-test size).
func BuildConfig(name string, scale int) (*Built, error) {
	spec, err := chipcfg.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Scaled(scale).Build()
}
