// Command figure1 regenerates Figure 1 of the paper: the reduction in peak
// temperature achieved by each migration scheme on each circuit
// configuration, plus the §3 scheme averages.
//
// Usage:
//
//	figure1 [-scale N] [-configs A,B,C,D,E] [-workers N] [-cache-dir DIR]
//	        [-server URL] [-csv] [-json] [-bars] [-progress]
//
// -scale divides the workload size (1 = full paper scale, slower; 8 is a
// quick smoke run). -workers bounds the lab's worker pool (0 = one per
// core); the 25-cell grid runs concurrently and Ctrl-C cancels cleanly.
// -cache-dir persists NoC characterizations and calibrated build
// snapshots, so re-running the figure — or any other tool pointed at the
// same directory — skips the cycle-accurate stage, the placement
// annealing and the energy calibration, and reproduces the numbers bit
// for bit. -server
// runs the sweep on a hotnocd daemon instead of in process; results are
// byte-identical to a local run at the same scale, and -workers /
// -cache-dir are then the daemon's business. -csv and -json emit
// machine-readable output; -bars renders the figure as text bar charts
// per configuration; -progress logs pipeline events to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	configs := flag.String("configs", "A,B,C,D,E", "comma-separated configuration letters")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per core)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	asJSON := flag.Bool("json", false, "emit JSON instead of an aligned table")
	bars := flag.Bool("bars", false, "also render per-configuration bar charts")
	progress := flag.Bool("progress", false, "log build/characterize/evaluate events to stderr")
	flag.Parse()

	if *asJSON && *asCSV {
		fmt.Fprintln(os.Stderr, "figure1: -json and -csv are mutually exclusive")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var logEvent func(hotnoc.Event)
	if *progress {
		logEvent = func(ev hotnoc.Event) { fmt.Fprintln(os.Stderr, "figure1:", ev) }
	}
	session := client.NewSession(*serverURL, *apiKey, *scale, *workers, *cacheDir, logEvent)

	names := strings.Split(*configs, ",")
	res, err := session.Figure1(ctx, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "figure1:", err)
			os.Exit(1)
		}
		return
	case *asCSV:
		tb := report.NewTable("config", "base_peak_c", "scheme", "reduction_c",
			"migrated_peak_c", "throughput_penalty")
		for _, row := range res.Rows {
			for _, c := range row.Cells {
				tb.AddRow(row.Config, row.BasePeakC, c.Scheme, c.ReductionC,
					c.MigratedPeakC, c.ThroughputPenalty)
			}
		}
		if err := tb.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figure1:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("Figure 1 — Reduction in Peak Temps (°C)")
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Printf("paper means: X-Y Shift 4.62 °C, Rot 4.15 °C\n")
	fmt.Printf("ours:        X-Y Shift %.2f °C, Rot %.2f °C\n",
		res.MeanReductionC["X-Y Shift"], res.MeanReductionC["Rot"])

	if *bars {
		for _, row := range res.Rows {
			fmt.Printf("\nconfiguration %s (base %.2f °C):\n", row.Config, row.BasePeakC)
			labels := make([]string, len(row.Cells))
			values := make([]float64, len(row.Cells))
			for i, c := range row.Cells {
				labels[i], values[i] = c.Scheme, c.ReductionC
			}
			fmt.Print(report.Bar(labels, values, "°C"))
		}
	}
}
