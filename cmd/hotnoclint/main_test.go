package main

import (
	"testing"

	"hotnoc/internal/lint"
)

// TestRegistersAllAnalyzers is the multichecker half of the meta-test:
// the binary must run exactly lint.All(), which internal/lint's own
// test pins to the full analyzer set. If an analyzer is added to the
// suite without reaching All(), this fails before CI quietly stops
// checking it.
func TestRegistersAllAnalyzers(t *testing.T) {
	all := lint.All()
	if len(all) < 4 {
		t.Fatalf("lint.All() registers %d analyzers, want at least the core 4", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name] = true
	}
	for _, core := range []string{"lockorder", "noalloc", "determinism", "errcache"} {
		if !names[core] {
			t.Errorf("core analyzer %q missing from lint.All()", core)
		}
	}
}
