// Command hotnoclint is hotnoc's multichecker: it runs every analyzer
// in internal/lint over the requested packages and exits non-zero on
// any finding. CI and scripts/check.sh run it over ./... so the
// codebase's hard-won invariants — collector lock ordering, noalloc
// hot loops, bitwise-deterministic sweep paths, never-cached errors —
// fail the build instead of waiting for a reviewer.
//
// Usage:
//
//	go run ./cmd/hotnoclint ./...
//	go run ./cmd/hotnoclint -list
//	go run ./cmd/hotnoclint -only noalloc,determinism ./internal/thermal/...
//
// Findings print as file:line:col: analyzer: message. A finding is
// suppressed by //hotnoc:allow <analyzer> <reason> on its line or the
// line above; the reason is the reviewable audit trail.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hotnoc/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hotnoclint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotnoclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotnoclint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hotnoclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hotnoclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
