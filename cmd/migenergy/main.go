// Command migenergy regenerates the paper's migration-energy observation
// (§3): state transfer plus idle-clock power during the migration window
// raises the average chip temperature — most for rotation, whose
// conflicting transfer routes need the most congestion-free phases. On
// configuration E this penalty, combined with the fixed central PE, pushes
// rotation's peak reduction negative.
//
// Usage:
//
//	migenergy [-config E] [-scale N] [-workers N] [-cache-dir DIR]
//	          [-server URL] [-progress]
//
// The schemes run concurrently on the lab, each scheme's with/without pair
// shares one NoC characterization, and -cache-dir reuses characterizations
// across processes. -server runs the ablation on a hotnocd daemon
// instead; -workers and -cache-dir are then the daemon's business.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "E", "configuration letter (A-E)")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per core)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	progress := flag.Bool("progress", false, "log build/characterize/evaluate events to stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var logEvent func(hotnoc.Event)
	if *progress {
		logEvent = func(ev hotnoc.Event) { fmt.Fprintln(os.Stderr, "migenergy:", ev) }
	}
	session := client.NewSession(*serverURL, *apiKey, *scale, *workers, *cacheDir, logEvent)

	studies, err := session.MigrationEnergy(ctx, *config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "migenergy:", err)
		os.Exit(1)
	}

	fmt.Printf("Migration-energy ablation — configuration %s\n", *config)
	fmt.Println("(each scheme run with and without migration energy in the thermal schedule)")
	fmt.Println()
	tb := report.NewTable("scheme", "Δmean (°C)", "reduction w/o E (°C)", "reduction w/ E (°C)",
		"mig energy (µJ/cycle)", "mig time (cycles)")
	for _, s := range studies {
		tb.AddRow(s.Scheme, s.DeltaMeanC, s.ReductionWithoutC, s.ReductionWithC,
			s.MigrationEnergyJ*1e6, s.MigrationCycles)
	}
	fmt.Print(tb.String())
	fmt.Println("\npaper: rotation's energy penalty raises average chip temperature by 0.3 °C (config E)")
}
