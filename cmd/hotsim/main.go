// Command hotsim runs one complete evaluation: a chip configuration under
// one migration scheme, reporting baseline versus migrated peak and mean
// temperatures, throughput penalty, migration energy, and per-leg details.
//
// Usage:
//
//	hotsim [-config A] [-scheme rot] [-blocks 1] [-scale N] [-nomigenergy]
//	       [-cache-dir DIR] [-server URL] [-progress]
//	hotsim -reactive -trigger 84 [-sim-blocks 2048] [-warmup-blocks N]
//	       [-sensor-quant 0.25] [-dt 5e-6] [-config A] [-scheme rot]
//	       [-scale N] [-cache-dir DIR] [-server URL]
//
// The default mode evaluates the paper's fixed-period policy. -reactive
// evaluates the threshold-triggered policy instead: the plane migrates
// only when the hottest (quantized) sensor exceeds -trigger °C, and the
// report covers the post-warmup operating regime. Both modes run through
// the session API, so Ctrl-C cancels cleanly between pipeline stages,
// -cache-dir reuses NoC characterizations and calibrated build snapshots
// left by any other tool on the
// same directory, and -server runs the evaluation — either kind — on a
// hotnocd daemon with byte-identical output; -cache-dir is then the
// daemon's business. -progress logs pipeline events to stderr as they
// happen — against a daemon these are the server's own live progress
// events, streamed back over SSE.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "A", "configuration letter (A-E)")
	schemeName := flag.String("scheme", "x-y shift", "migration scheme (rot, x mirror, x-y mirror, right shift, x-y shift)")
	blocks := flag.Int("blocks", 1, "migration period in LDPC blocks")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	noMigEnergy := flag.Bool("nomigenergy", false, "exclude migration energy (ablation)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	reactive := flag.Bool("reactive", false, "evaluate the threshold-triggered policy instead of the periodic one")
	trigger := flag.Float64("trigger", 84, "reactive sensor threshold in °C")
	simBlocks := flag.Int("sim-blocks", 2048, "reactive simulation horizon in decoded blocks")
	warmupBlocks := flag.Int("warmup-blocks", 0, "blocks excluded from reactive statistics (0 = half the horizon)")
	sensorQuant := flag.Float64("sensor-quant", 0.25, "reactive sensor resolution in °C")
	dt := flag.Float64("dt", 5e-6, "reactive thermal integrator step in seconds")
	peaksEvery := flag.Int("peaks-every", 0, "record the sensor timeline every N blocks (0/1 = every block, negative = omit)")
	progress := flag.Bool("progress", false, "log build/characterize/evaluate events to stderr (remote runs included)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scheme, err := hotnoc.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotsim:", err)
		os.Exit(1)
	}
	var logEvent func(hotnoc.Event)
	if *progress {
		logEvent = func(ev hotnoc.Event) { fmt.Fprintln(os.Stderr, "hotsim:", ev) }
	}
	session := client.NewSession(*serverURL, *apiKey, *scale, 0, *cacheDir, logEvent)

	// Flags belonging to the other mode are an error, not silently
	// dropped: the threshold policy has no fixed period and always
	// includes migration energy (the library's point validation agrees),
	// and a -trigger without -reactive would otherwise run a periodic
	// experiment the user did not ask for.
	periodicOnly := map[string]bool{"blocks": true, "nomigenergy": true}
	reactiveOnly := map[string]bool{"trigger": true, "sim-blocks": true,
		"warmup-blocks": true, "sensor-quant": true, "dt": true, "peaks-every": true}
	flag.Visit(func(f *flag.Flag) {
		switch {
		case *reactive && periodicOnly[f.Name]:
			fmt.Fprintf(os.Stderr, "hotsim: -%s is not supported with -reactive\n", f.Name)
			os.Exit(1)
		case !*reactive && reactiveOnly[f.Name]:
			fmt.Fprintf(os.Stderr, "hotsim: -%s requires -reactive\n", f.Name)
			os.Exit(1)
		}
	})

	if *reactive {
		runReactive(ctx, session, *config, hotnoc.ReactiveConfig{
			Scheme:       scheme,
			TriggerC:     *trigger,
			SimBlocks:    *simBlocks,
			WarmupBlocks: *warmupBlocks,
			SensorQuantC: *sensorQuant,
			Dt:           *dt,
			PeaksEvery:   *peaksEvery,
		})
		return
	}

	outs, err := session.SweepAll(ctx, []hotnoc.SweepPoint{{
		Config:                 *config,
		Scheme:                 scheme,
		Blocks:                 *blocks,
		ExcludeMigrationEnergy: *noMigEnergy,
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotsim:", err)
		os.Exit(1)
	}
	built, res := outs[0].Built, outs[0].Result

	g := built.System.Grid
	fmt.Printf("configuration %s (%dx%d, energy scale %.2f, block %d cycles ≈ %.1f µs)\n",
		*config, g.W, g.H, built.EnergyScale, built.BlockCycles,
		float64(built.BlockCycles)/built.System.ClockHz*1e6)
	fmt.Printf("scheme %s, period %d block(s) ≈ %.1f µs\n\n", scheme.Name, *blocks, res.PeriodSec*1e6)

	fmt.Printf("baseline peak  %.2f °C at block %d (mean %.2f °C)\n",
		res.BaselinePeakC, res.BaselinePeakAt, res.BaselineMeanC)
	fmt.Printf("migrated peak  %.2f °C at block %d (mean %.2f °C)\n",
		res.MigratedPeakC, res.MigratedPeakAt, res.MigratedMeanC)
	fmt.Printf("reduction      %.2f °C\n", res.ReductionC)
	fmt.Printf("throughput     %.2f %% penalty\n", res.ThroughputPenalty*100)
	fmt.Printf("migration      %.2f µJ per thermal cycle\n\n", res.MigrationEnergyJ*1e6)

	tb := report.NewTable("leg", "decode cycles", "mig cycles", "phases", "transfers",
		"decode µJ", "migration µJ")
	for i, leg := range res.Legs {
		tb.AddRow(i, leg.DecodeCycles, leg.Migration.Cycles, leg.Migration.Phases,
			leg.Migration.Transfers, leg.DecodeEnergyJ*1e6, leg.MigrationEnergyJ*1e6)
	}
	fmt.Print(tb.String())

	fmt.Println("\nbaseline max temperatures (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, res.BaselineMaxTemps, "°C"))
	fmt.Println("\nmigrated max temperatures (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, res.MigratedMaxTemps, "°C"))
}

// runReactive evaluates one threshold-triggered configuration through the
// session — local Lab or remote daemon alike — and reports the
// controller's post-warmup operating regime.
func runReactive(ctx context.Context, session hotnoc.Session, config string, cfg hotnoc.ReactiveConfig) {
	results, err := session.Reactive(ctx, config, []hotnoc.ReactiveConfig{cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotsim:", err)
		os.Exit(1)
	}
	res := results[0]

	// Report the effective parameters the evaluation actually ran with,
	// not the raw flags — defaults and clamping live in one place.
	eff := cfg.Normalized()
	recorded := eff.SimBlocks - eff.WarmupBlocks
	fmt.Printf("configuration %s, scheme %s, reactive trigger %.2f °C\n", config, eff.Scheme.Name, eff.TriggerC)
	fmt.Printf("horizon %d blocks (warmup %d), sensor LSB %.2f °C, dt %.1f µs\n\n",
		eff.SimBlocks, eff.WarmupBlocks, eff.SensorQuantC, eff.Dt*1e6)

	fmt.Printf("peak        %.2f °C (post-warmup)\n", res.PeakC)
	fmt.Printf("mean        %.2f °C\n", res.MeanC)
	fmt.Printf("migrations  %d over %d recorded blocks\n", res.Migrations, recorded)
	fmt.Printf("throughput  %.2f %% penalty\n", res.ThroughputPenalty*100)

	// A coarse timeline of the sensor peak shows the control behaviour:
	// min/max over eight equal slices of the horizon.
	if n := len(res.BlockPeaks); n >= 8 {
		tb := report.NewTable("blocks", "sensor min °C", "sensor max °C")
		for s := 0; s < 8; s++ {
			lo, hi := s*n/8, (s+1)*n/8
			mn, mx := res.BlockPeaks[lo], res.BlockPeaks[lo]
			for _, v := range res.BlockPeaks[lo:hi] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			tb.AddRow(fmt.Sprintf("%d-%d", lo, hi-1), mn, mx)
		}
		fmt.Println()
		fmt.Print(tb.String())
	}
}
