// Command hotsim runs one complete evaluation: a chip configuration under
// one migration scheme, reporting baseline versus migrated peak and mean
// temperatures, throughput penalty, migration energy, and per-leg details.
//
// Usage:
//
//	hotsim [-config A] [-scheme rot] [-blocks 1] [-scale N] [-nomigenergy]
//	       [-cache-dir DIR] [-server URL]
//
// The evaluation runs through the lab, so Ctrl-C cancels cleanly between
// pipeline stages and -cache-dir reuses NoC characterizations left by any
// other tool on the same directory. -server runs the evaluation on a
// hotnocd daemon instead; -cache-dir is then the daemon's business.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "A", "configuration letter (A-E)")
	schemeName := flag.String("scheme", "x-y shift", "migration scheme (rot, x mirror, x-y mirror, right shift, x-y shift)")
	blocks := flag.Int("blocks", 1, "migration period in LDPC blocks")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	noMigEnergy := flag.Bool("nomigenergy", false, "exclude migration energy (ablation)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scheme, err := hotnoc.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotsim:", err)
		os.Exit(1)
	}
	session := client.NewSession(*serverURL, *scale, 0, *cacheDir, nil)
	outs, err := session.SweepAll(ctx, []hotnoc.SweepPoint{{
		Config:                 *config,
		Scheme:                 scheme,
		Blocks:                 *blocks,
		ExcludeMigrationEnergy: *noMigEnergy,
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotsim:", err)
		os.Exit(1)
	}
	built, res := outs[0].Built, outs[0].Result

	g := built.System.Grid
	fmt.Printf("configuration %s (%dx%d, energy scale %.2f, block %d cycles ≈ %.1f µs)\n",
		*config, g.W, g.H, built.EnergyScale, built.BlockCycles,
		float64(built.BlockCycles)/built.System.ClockHz*1e6)
	fmt.Printf("scheme %s, period %d block(s) ≈ %.1f µs\n\n", scheme.Name, *blocks, res.PeriodSec*1e6)

	fmt.Printf("baseline peak  %.2f °C at block %d (mean %.2f °C)\n",
		res.BaselinePeakC, res.BaselinePeakAt, res.BaselineMeanC)
	fmt.Printf("migrated peak  %.2f °C at block %d (mean %.2f °C)\n",
		res.MigratedPeakC, res.MigratedPeakAt, res.MigratedMeanC)
	fmt.Printf("reduction      %.2f °C\n", res.ReductionC)
	fmt.Printf("throughput     %.2f %% penalty\n", res.ThroughputPenalty*100)
	fmt.Printf("migration      %.2f µJ per thermal cycle\n\n", res.MigrationEnergyJ*1e6)

	tb := report.NewTable("leg", "decode cycles", "mig cycles", "phases", "transfers",
		"decode µJ", "migration µJ")
	for i, leg := range res.Legs {
		tb.AddRow(i, leg.DecodeCycles, leg.Migration.Cycles, leg.Migration.Phases,
			leg.Migration.Transfers, leg.DecodeEnergyJ*1e6, leg.MigrationEnergyJ*1e6)
	}
	fmt.Print(tb.String())

	fmt.Println("\nbaseline max temperatures (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, res.BaselineMaxTemps, "°C"))
	fmt.Println("\nmigrated max temperatures (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, res.MigratedMaxTemps, "°C"))
}
