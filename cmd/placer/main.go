// Command placer runs the thermally-aware static placement for one
// configuration and shows its effect: the per-PE power profile, the
// annealed logical-to-physical mapping, and the steady-state temperature
// map of the placed workload.
//
// Usage:
//
//	placer [-config A] [-scale N] [-server URL]
//
// The report comes from a lab session, so repeated invocations inside one
// process (or library callers holding the same Lab) share the calibrated
// build cache. -server fetches the same report from a hotnocd daemon —
// whose long-lived build cache makes repeated placer runs nearly free —
// and renders identical output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hotnoc/client"
	"hotnoc/internal/geom"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "A", "configuration letter (A-E)")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	serverURL := flag.String("server", "", "fetch the report from a hotnocd daemon at this base URL instead of building in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	session := client.NewSession(*serverURL, *apiKey, *scale, 0, "", nil)
	rep, err := session.Placement(ctx, *config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	g := geom.NewGrid(rep.GridW, rep.GridH)

	fmt.Printf("configuration %s — thermally-aware placement\n\n", *config)
	fmt.Printf("annealed objective: peak %.2f °C, %.0f message-hops, %d accepted moves\n\n",
		rep.PeakC, rep.CommHops, rep.Accepted)

	tb := report.NewTable("logical PE", "physical block", "coordinate")
	for l, b := range rep.Placement {
		tb.AddRow(l, b, g.Coord(b).String())
	}
	fmt.Print(tb.String())

	fmt.Printf("\nplaced power map (total %.1f W):\n", rep.TotalPowerW)
	fmt.Print(report.HeatMap(g.W, g.H, rep.PlacedPowerW, "W"))

	fmt.Println("\nsteady-state temperatures of the placed map (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, rep.SteadyTempsC, "°C"))
}
