// Command placer runs the thermally-aware static placement for one
// configuration and shows its effect: the per-PE power profile, the
// annealed logical-to-physical mapping, and the steady-state temperature
// map before and after placement.
//
// Usage:
//
//	placer [-config A] [-scale N]
//
// The build comes from a lab session, so repeated invocations inside one
// process (or library callers holding the same Lab) share the calibrated
// build cache.
package main

import (
	"flag"
	"fmt"
	"os"

	"hotnoc"
	"hotnoc/internal/power"
	"hotnoc/internal/report"
	"hotnoc/internal/thermal"
)

func main() {
	config := flag.String("config", "A", "configuration letter (A-E)")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	flag.Parse()

	lab := hotnoc.NewLab(hotnoc.WithScale(*scale))
	built, err := lab.Build(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	sys := built.System
	g := sys.Grid

	// Reconstruct the placed power map by decoding one block.
	if err := sys.Engine.SetPlacement(sys.InitialPlace); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	sys.Engine.Net.ResetStats()
	blk, err := sys.Engine.Decode(sys.BlockSource(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	dur := float64(blk.Cycles) / sys.ClockHz
	placedPower := sys.Engine.Net.Act.PowerMap(sys.Energy, dur)

	ss, err := thermal.NewSteadySolver(sys.Therm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}

	fmt.Printf("configuration %s — thermally-aware placement\n\n", *config)
	fmt.Printf("annealed objective: peak %.2f °C, %.0f message-hops, %d accepted moves\n\n",
		built.PlaceResult.PeakC, built.PlaceResult.CommHops, built.PlaceResult.Accepted)

	tb := report.NewTable("logical PE", "physical block", "coordinate")
	for l, b := range sys.InitialPlace {
		tb.AddRow(l, b, g.Coord(b).String())
	}
	fmt.Print(tb.String())

	fmt.Printf("\nplaced power map (total %.1f W):\n", power.Total(placedPower))
	fmt.Print(report.HeatMap(g.W, g.H, placedPower, "W"))

	fmt.Println("\nsteady-state temperatures of the placed map (°C):")
	fmt.Print(report.HeatMap(g.W, g.H, ss.Solve(placedPower), "°C"))
}
