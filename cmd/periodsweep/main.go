// Command periodsweep regenerates the paper's migration-period study (§3):
// longer migration periods reduce the throughput penalty roughly in
// proportion while the peak temperature rises only marginally. The paper's
// 109.3 / 437.2 / 874.4 µs periods correspond to 1 / 4 / 8 LDPC blocks.
//
// Usage:
//
//	periodsweep [-config A] [-scheme "x-y shift"] [-blocks 1,4,8] [-scale N]
//	            [-workers N] [-cache-dir DIR] [-server URL] [-json] [-progress]
//
// All periods share one NoC characterization — only the cheap thermal
// evaluation runs per period — and with -cache-dir that characterization
// persists across processes, so a repeated sweep (or one after a figure1
// run on the same cache) skips the cycle-accurate stage entirely.
// -server runs the sweep on a hotnocd daemon instead; -workers and
// -cache-dir are then the daemon's business.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "A", "configuration letter")
	schemeName := flag.String("scheme", "x-y shift", "migration scheme")
	blocksArg := flag.String("blocks", "1,4,8", "comma-separated periods in blocks")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per core)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	asJSON := flag.Bool("json", false, "emit JSON instead of an aligned table")
	progress := flag.Bool("progress", false, "log build/characterize/evaluate events to stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scheme, err := hotnoc.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "periodsweep:", err)
		os.Exit(1)
	}
	var blocks []int
	for _, s := range strings.Split(*blocksArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "periodsweep: bad block count %q\n", s)
			os.Exit(1)
		}
		blocks = append(blocks, n)
	}

	var logEvent func(hotnoc.Event)
	if *progress {
		logEvent = func(ev hotnoc.Event) { fmt.Fprintln(os.Stderr, "periodsweep:", ev) }
	}
	session := client.NewSession(*serverURL, *apiKey, *scale, *workers, *cacheDir, logEvent)

	pts, err := session.PeriodSweep(ctx, *config, scheme, blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "periodsweep:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Config string
			Scheme string
			Points []hotnoc.PeriodPoint
		}{Config: *config, Scheme: scheme.Name, Points: pts}); err != nil {
			fmt.Fprintln(os.Stderr, "periodsweep:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("Migration-period study — configuration %s, scheme %s\n\n", *config, scheme.Name)
	tb := report.NewTable("blocks", "period (µs)", "throughput penalty (%)", "peak (°C)", "peak rise (°C)")
	for _, p := range pts {
		tb.AddRow(p.Blocks, p.PeriodSec*1e6, p.ThroughputPenalty*100, p.PeakC, p.PeakRiseC)
	}
	fmt.Print(tb.String())
	fmt.Println("\npaper: 109.3 µs -> 1.6 %; 437.2 µs -> <0.4 % and peak +<0.1 °C; 874.4 µs -> <0.2 %")
}
