// Command hotnocd serves hotnoc.Lab sweeps over HTTP so many clients
// share one characterization cache and one worker pool. Submitted grids
// become jobs that stream progress and outcomes as server-sent events;
// the six hotnoc CLIs run against a daemon via their -server flag.
//
// Usage:
//
//	hotnocd [-addr :7077] [-cache-dir DIR] [-cache-limit N] [-workers N]
//	        [-max-jobs N] [-retain-jobs N] [-retain-for 1h]
//	        [-drain-timeout 1m] [-v]
//
// -addr is the listen address. -cache-dir persists NoC characterizations
// and calibrated build snapshots (annealed placement + energy
// calibration) across restarts, so a restarted daemon warm-starts with
// zero annealing, calibration or cycle-accurate simulation (strongly
// recommended for a long-lived daemon); -cache-limit bounds the file
// count of each artifact kind with LRU eviction. -workers bounds
// each Lab's worker pool (0 = one per core). -max-jobs bounds
// concurrently running sweep jobs: at the bound, new submissions are
// rejected with 429 and a Retry-After header. -retain-jobs caps how many
// finished jobs (and their replayable event logs) stay in memory;
// -retain-for expires finished jobs after a TTL — between them a
// long-lived daemon's memory stops growing with its history. On
// SIGINT/SIGTERM the daemon stops accepting sweeps, drains in-flight
// jobs for up to -drain-timeout, then cancels whatever remains and
// exits. -v logs requests.
//
// Endpoints (see the server package for details):
//
//	POST   /v1/sweeps             submit a grid, returns {"id": "job-N"}
//	GET    /v1/sweeps/{id}/events SSE stream of progress + outcomes
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          one job
//	DELETE /v1/jobs/{id}          cancel (or forget) a job
//	GET    /v1/builds/{config}    placement report (query: scale)
//	GET    /v1/stats              decodes, cache hits, worker utilization
//	GET    /healthz               liveness
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotnoc/server"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	cacheLimit := flag.Int("cache-limit", 0, "bound the cache file count per artifact kind (LRU eviction; 0 = unbounded)")
	workers := flag.Int("workers", 0, "per-Lab sweep worker pool size (0 = one per core)")
	maxJobs := flag.Int("max-jobs", 0, "maximum concurrently running sweep jobs; excess submissions get 429 (0 = unbounded)")
	retainJobs := flag.Int("retain-jobs", 0, "finished jobs kept in memory for late subscribers (0 = unbounded)")
	retainFor := flag.Duration("retain-for", 0, "finished-job TTL, e.g. 1h (0 = keep until DELETEd)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long to drain in-flight jobs on shutdown")
	verbose := flag.Bool("v", false, "log requests")
	flag.Parse()

	logger := log.New(os.Stderr, "hotnocd: ", log.LstdFlags)

	svc := server.New(server.Config{
		CacheDir:   *cacheDir,
		CacheLimit: *cacheLimit,
		Workers:    *workers,
		MaxJobs:    *maxJobs,
		RetainJobs: *retainJobs,
		RetainFor:  *retainFor,
	})
	var handler http.Handler = svc
	if *verbose {
		handler = logRequests(logger, svc)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache-dir %q, workers %d)", *addr, *cacheDir, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	logger.Printf("shutting down: draining jobs (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete, canceled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("bye")
}

// logRequests is a minimal request logger for -v.
func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Printf("%s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
