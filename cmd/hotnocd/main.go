// Command hotnocd serves hotnoc.Lab sweeps over HTTP so many clients
// share one characterization cache and one worker pool. Submitted grids
// become jobs that stream progress and outcomes as server-sent events;
// the six hotnoc CLIs run against a daemon via their -server flag.
//
// Usage:
//
//	hotnocd [-addr :7077] [-cache-dir DIR] [-cache-limit N] [-workers N]
//	        [-max-jobs N] [-retain-jobs N] [-retain-for 1h]
//	        [-tenants FILE] [-allow-anonymous]
//	        [-default-max-running N] [-default-max-queued N]
//	        [-default-rate R] [-default-burst N] [-max-body BYTES]
//	        [-coordinator] [-join URL] [-advertise URL]
//	        [-fleet-secret SECRET] [-worker-lease 15s]
//	        [-metrics] [-metrics-log FILE] [-metrics-flush 15s]
//	        [-event-buffer N] [-drain-timeout 1m] [-v]
//
// -addr is the listen address. -cache-dir persists NoC characterizations
// and calibrated build snapshots (annealed placement + energy
// calibration) across restarts, so a restarted daemon warm-starts with
// zero annealing, calibration or cycle-accurate simulation (strongly
// recommended for a long-lived daemon); -cache-limit bounds the file
// count of each artifact kind with LRU eviction. -workers bounds
// each Lab's worker pool (0 = one per core). -max-jobs bounds
// concurrently running sweep jobs: at the bound, new submissions queue
// and a weighted-fair scheduler dispatches them as slots free up.
// -retain-jobs caps how many finished jobs (and their replayable event
// logs) stay in memory; -retain-for expires finished jobs after a TTL —
// between them a long-lived daemon's memory stops growing with its
// history.
//
// -tenants names a JSON tenants file (see the server/tenant package for
// the format): every /v1 request must then present a known API key as
// "Authorization: Bearer <key>" or it is rejected with 401 (403 for
// disabled tenants). -allow-anonymous additionally admits requests with
// no credentials as the anonymous tenant — the migration path for
// legacy clients. Without -tenants the daemon is open, exactly as
// before. The -default-* flags set the limits a tenants-file entry
// inherits when it omits them, and the anonymous tenant's limits:
// -default-max-running caps a tenant's concurrently running jobs
// (excess queues), -default-max-queued caps its queued jobs and
// -default-rate/-default-burst its submit-rate token bucket (excess is
// 429 + Retry-After). Zero means unbounded. -max-body caps the POST
// /v1/sweeps body (413 beyond it; 0 = 8 MiB).
//
// Daemons compose into a fleet. -coordinator runs this daemon as a
// coordinator: it simulates nothing itself, but shards every submitted
// sweep across the workers that joined it and merges their streams back
// into one byte-identical, point-ordered stream — clients just point
// -server at the coordinator. -join URL runs this daemon as a worker of
// the coordinator at URL: it registers itself (advertising -advertise,
// derived from -addr when omitted) and re-registers every third of the
// coordinator's -worker-lease as a heartbeat; a worker that misses its
// lease is expired and its unfinished shards move to survivors.
// -fleet-secret, when set on the coordinator, must be presented by
// joining workers — tenant API keys never leave the coordinator.
//
// The daemon is observable in production. GET /metrics (on by default;
// -metrics=false turns the subsystem off) serves Prometheus text
// exposition: stage-latency histograms and cache counters per scale,
// queue-wait and per-tenant job counters, scheduler depth gauges — and,
// on a coordinator, fleet-wide aggregates with per-worker labels that
// stay monotonic across worker restarts. GET /v1/events streams
// structured lifecycle diagnostics (job submitted/queued/dispatched/
// finished, tenant throttling, worker join/leave) as tenant-scoped
// server-sent events with Last-Event-ID resume; -event-buffer sets its
// replay depth. -metrics-log appends a JSON snapshot of every
// instrument to a file each -metrics-flush interval — flight-recorder
// observability with no scraper in sight.
//
// On SIGHUP the daemon reloads its -tenants file in place: new keys,
// weights and limits apply immediately, running jobs are untouched, and
// a file that fails to parse keeps the current registry. On
// SIGINT/SIGTERM the daemon stops accepting sweeps (a worker also
// deregisters from its coordinator), drains in-flight jobs for up to
// -drain-timeout, then cancels whatever remains and exits. -v logs
// requests.
//
// Endpoints (see the server package for details):
//
//	POST   /v1/sweeps             submit a grid, returns {"id": "job-N"}
//	GET    /v1/sweeps/{id}/events SSE stream of progress + outcomes
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          one job
//	DELETE /v1/jobs/{id}          cancel (or forget) a job
//	GET    /v1/builds/{config}    placement report (query: scale)
//	GET    /v1/stats              decodes, cache hits, worker utilization
//	GET    /v1/events             SSE diagnostics stream (lifecycle events)
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"hotnoc/client"
	"hotnoc/obs"
	"hotnoc/server"
	"hotnoc/server/fleet"
	"hotnoc/server/tenant"
	"hotnoc/server/wire"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	cacheLimit := flag.Int("cache-limit", 0, "bound the cache file count per artifact kind (LRU eviction; 0 = unbounded)")
	workers := flag.Int("workers", 0, "per-Lab sweep worker pool size (0 = one per core)")
	maxJobs := flag.Int("max-jobs", 0, "maximum concurrently running sweep jobs; excess queues for weighted-fair dispatch (0 = unbounded)")
	retainJobs := flag.Int("retain-jobs", 0, "finished jobs kept in memory for late subscribers (0 = unbounded)")
	retainFor := flag.Duration("retain-for", 0, "finished-job TTL, e.g. 1h (0 = keep until DELETEd)")
	tenantsFile := flag.String("tenants", "", "JSON tenants file; requires an API key on every /v1 request")
	allowAnon := flag.Bool("allow-anonymous", false, "with -tenants, admit unauthenticated requests as the anonymous tenant")
	defMaxRunning := flag.Int("default-max-running", 0, "default per-tenant running-job quota; excess queues (0 = unbounded)")
	defMaxQueued := flag.Int("default-max-queued", 0, "default per-tenant queued-job bound; excess is 429 (0 = unbounded)")
	defRate := flag.Float64("default-rate", 0, "default per-tenant submit rate in jobs/sec; excess is 429 (0 = unbounded)")
	defBurst := flag.Int("default-burst", 0, "default per-tenant submit-rate burst (values below 1 act as 1)")
	maxBody := flag.Int64("max-body", 0, "maximum POST /v1/sweeps body in bytes; excess is 413 (0 = 8 MiB)")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator: shard sweeps across joined workers instead of simulating locally")
	join := flag.String("join", "", "coordinator URL to join as a worker (e.g. http://coord:7077)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default derives from -addr)")
	fleetSecret := flag.String("fleet-secret", "", "shared secret gating worker registration; set on the coordinator, presented by joining workers")
	workerLease := flag.Duration("worker-lease", 15*time.Second, "coordinator: how long a worker registration lives without a heartbeat")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long to drain in-flight jobs on shutdown")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics on GET /metrics and record pipeline instruments")
	metricsLog := flag.String("metrics-log", "", "append periodic JSON metric snapshots to this file (requires -metrics)")
	metricsFlush := flag.Duration("metrics-flush", 15*time.Second, "how often -metrics-log snapshots are written")
	eventBuffer := flag.Int("event-buffer", 0, "GET /v1/events diagnostics ring capacity (0 = 512)")
	sseKeepAlive := flag.Duration("sse-keepalive", 0, "SSE keep-alive comment interval on idle event streams (0 = 15s)")
	verbose := flag.Bool("v", false, "log requests")
	flag.Parse()

	logger := log.New(os.Stderr, "hotnocd: ", log.LstdFlags)

	if *coordinator && *join != "" {
		logger.Fatalf("-coordinator and -join are mutually exclusive: a daemon is either the coordinator or a worker")
	}

	defaults := tenant.Limits{
		MaxRunning: *defMaxRunning,
		MaxQueued:  *defMaxQueued,
		RatePerSec: *defRate,
		Burst:      *defBurst,
	}
	var registry *tenant.Registry
	if *tenantsFile != "" {
		var err error
		registry, err = tenant.Load(*tenantsFile, defaults, *allowAnon)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		mode := "API key required"
		if *allowAnon {
			mode = "anonymous requests allowed"
		}
		logger.Printf("loaded %d tenants from %s (%s)", registry.Len(), *tenantsFile, mode)
	} else {
		registry = tenant.Open(defaults)
		if *allowAnon {
			logger.Printf("-allow-anonymous has no effect without -tenants (the daemon is open)")
		}
	}

	cfg := server.Config{
		CacheDir:       *cacheDir,
		CacheLimit:     *cacheLimit,
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		Tenants:        registry,
		MaxBody:        *maxBody,
		RetainJobs:     *retainJobs,
		RetainFor:      *retainFor,
		DisableMetrics: !*metrics,
		EventBuffer:    *eventBuffer,
		KeepAlive:      *sseKeepAlive,
	}
	if *coordinator {
		cfg.Fleet = fleet.NewCoordinator(fleet.Config{Lease: *workerLease, Secret: *fleetSecret})
		logger.Printf("coordinator mode: sweeps shard across joined workers (lease %s)", *workerLease)
	}
	// The daemon's registry is created here so sinks can attach to it;
	// server.New records its scheduler, pipeline and fleet instruments
	// into it and serves it on GET /metrics.
	obsReg := obs.NewRegistry()
	cfg.Metrics = obsReg
	var metricsBatcher *obs.Batcher
	if *metricsLog != "" {
		if !*metrics {
			logger.Fatalf("-metrics-log requires -metrics")
		}
		f, err := os.OpenFile(*metricsLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("-metrics-log: %v", err)
		}
		metricsBatcher = obs.NewBatcher(obsReg, *metricsFlush, obs.NewLogSink(f))
		logger.Printf("metrics snapshots every %s to %s", *metricsFlush, *metricsLog)
	}
	svc := server.New(cfg)
	var handler http.Handler = svc
	if *verbose {
		handler = logRequests(logger, svc)
	}
	// ReadHeaderTimeout bounds how long an idle connection may sit on its
	// request line before the daemon reclaims it (slowloris); IdleTimeout
	// reclaims kept-alive connections between requests. No WriteTimeout:
	// event streams are legitimately long-lived.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the tenants file: new keys, weights and limits
	// apply without restarting (or even pausing) the daemon. A file that
	// no longer parses keeps the current registry — a typo must not lock
	// every tenant out.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *tenantsFile == "" {
				logger.Printf("SIGHUP: no -tenants file to reload")
				continue
			}
			reg, err := tenant.Load(*tenantsFile, defaults, *allowAnon)
			if err != nil {
				logger.Printf("SIGHUP: tenants reload failed, keeping current registry: %v", err)
				continue
			}
			svc.SetTenants(reg)
			logger.Printf("SIGHUP: reloaded %d tenants from %s", reg.Len(), *tenantsFile)
		}
	}()

	var leaveFleet func()
	if *join != "" {
		leaveFleet = joinFleet(ctx, logger, *join, *fleetSecret, advertiseURL(*advertise, *addr), *workers)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache-dir %q, workers %d)", *addr, *cacheDir, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	if leaveFleet != nil {
		// Deregister before draining so the coordinator re-dispatches
		// this worker's shards instead of waiting out the lease.
		leaveFleet()
	}
	logger.Printf("shutting down: draining jobs (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete, canceled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if metricsBatcher != nil {
		// Final snapshot: the terminal counter values land in the log
		// before exit.
		if err := metricsBatcher.Close(); err != nil {
			logger.Printf("metrics flush: %v", err)
		}
	}
	logger.Printf("bye")
}

// advertiseURL derives the base URL a worker advertises to its
// coordinator when -advertise is not given: the listen address, with a
// loopback host filled in when -addr leaves the host empty.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// joinFleet registers this daemon with the coordinator at coordURL and
// keeps the lease alive: registration is idempotent by URL, so re-POSTing
// every third of the lease is the heartbeat, and a coordinator restart
// just re-adds us under a fresh id. The returned function deregisters
// cleanly — call it on shutdown before draining, so the coordinator
// moves this worker's shards to survivors immediately.
func joinFleet(ctx context.Context, logger *log.Logger, coordURL, secret, selfURL string, capacity int) func() {
	if capacity <= 0 {
		capacity = runtime.NumCPU()
	}
	cl := client.New(coordURL, client.WithAPIKey(secret))
	reg := wire.WorkerRegistration{URL: selfURL, Capacity: capacity}
	var (
		mu sync.Mutex
		id string
	)
	go func() {
		interval := 5 * time.Second
		for {
			lease, err := cl.RegisterWorker(ctx, reg)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				logger.Printf("fleet: registering with %s failed (will retry): %v", coordURL, err)
			} else {
				mu.Lock()
				if id != lease.ID {
					logger.Printf("fleet: joined %s as %s, advertising %s (lease %.0fs)", coordURL, lease.ID, selfURL, lease.LeaseSec)
				}
				id = lease.ID
				mu.Unlock()
				if lease.LeaseSec > 0 {
					interval = time.Duration(lease.LeaseSec*float64(time.Second)) / 3
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(interval):
			}
		}
	}()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if id == "" {
			return
		}
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cl.DeregisterWorker(dctx, id); err != nil {
			logger.Printf("fleet: deregister: %v", err)
		}
	}
}

// logRequests is a minimal request logger for -v.
func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Printf("%s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
