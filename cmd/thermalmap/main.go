// Command thermalmap renders the thermal effect of runtime reconfiguration
// side by side: each block's maximum temperature over the static baseline
// and over the migrated quasi-steady cycle, for one configuration and
// scheme.
//
// Usage:
//
//	thermalmap [-config E] [-scheme "x-y shift"] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	"hotnoc"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "E", "configuration letter (A-E)")
	schemeName := flag.String("scheme", "x-y shift", "migration scheme")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	flag.Parse()

	scheme, err := hotnoc.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermalmap:", err)
		os.Exit(1)
	}
	built, err := hotnoc.BuildConfig(*config, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermalmap:", err)
		os.Exit(1)
	}
	res, err := built.System.Run(hotnoc.RunConfig{Scheme: scheme})
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermalmap:", err)
		os.Exit(1)
	}

	g := built.System.Grid
	fmt.Printf("configuration %s under %s (period %.1f µs)\n\n", *config, scheme.Name, res.PeriodSec*1e6)
	fmt.Printf("static baseline — peak %.2f °C:\n", res.BaselinePeakC)
	fmt.Print(report.HeatMap(g.W, g.H, res.BaselineMaxTemps, "°C"))
	fmt.Printf("\nwith runtime reconfiguration — peak %.2f °C (%+.2f °C):\n",
		res.MigratedPeakC, -res.ReductionC)
	fmt.Print(report.HeatMap(g.W, g.H, res.MigratedMaxTemps, "°C"))
}
