// Command thermalmap renders the thermal effect of runtime reconfiguration
// side by side: each block's maximum temperature over the static baseline
// and over the migrated quasi-steady cycle, for one configuration and
// scheme.
//
// Usage:
//
//	thermalmap [-config E] [-scheme "x-y shift"] [-scale N] [-cache-dir DIR]
//	           [-server URL]
//
// The evaluation runs through the lab, so a -cache-dir shared with the
// other tools serves the NoC characterization from disk. -server runs the
// evaluation on a hotnocd daemon instead; -cache-dir is then the daemon's
// business.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hotnoc"
	"hotnoc/client"
	"hotnoc/internal/report"
)

func main() {
	config := flag.String("config", "E", "configuration letter (A-E)")
	schemeName := flag.String("scheme", "x-y shift", "migration scheme")
	scale := flag.Int("scale", 1, "workload divisor (1 = paper scale)")
	cacheDir := flag.String("cache-dir", "", "persist NoC characterizations and calibrated build snapshots under this directory")
	serverURL := flag.String("server", "", "run against a hotnocd daemon at this base URL instead of in process")
	apiKey := flag.String("api-key", os.Getenv("HOTNOC_API_KEY"), "API key for a -server daemon that requires authentication (default $HOTNOC_API_KEY)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scheme, err := hotnoc.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermalmap:", err)
		os.Exit(1)
	}
	session := client.NewSession(*serverURL, *apiKey, *scale, 0, *cacheDir, nil)
	outs, err := session.SweepAll(ctx, []hotnoc.SweepPoint{{Config: *config, Scheme: scheme}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermalmap:", err)
		os.Exit(1)
	}
	res := outs[0].Result

	g := outs[0].Built.System.Grid
	fmt.Printf("configuration %s under %s (period %.1f µs)\n\n", *config, scheme.Name, res.PeriodSec*1e6)
	fmt.Printf("static baseline — peak %.2f °C:\n", res.BaselinePeakC)
	fmt.Print(report.HeatMap(g.W, g.H, res.BaselineMaxTemps, "°C"))
	fmt.Printf("\nwith runtime reconfiguration — peak %.2f °C (%+.2f °C):\n",
		res.MigratedPeakC, -res.ReductionC)
	fmt.Print(report.HeatMap(g.W, g.H, res.MigratedMaxTemps, "°C"))
}
