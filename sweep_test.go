package hotnoc

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSweepFigure1GridMatchesSerial is the acceptance check for the
// concurrent sweep engine: the full Figure 1 grid — all five schemes on
// all five configurations — run concurrently, with every outcome bitwise
// identical to a serial System.Run walk over the same calibrated builds.
func TestSweepFigure1GridMatchesSerial(t *testing.T) {
	configs := []string{"A", "B", "C", "D", "E"}
	pts := SweepGrid(configs, Schemes(), nil)
	if len(pts) != 25 {
		t.Fatalf("%d grid points, want 25", len(pts))
	}
	outs, err := Sweep(context.Background(), pts, SweepOptions{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Point.Config != pts[i].Config || o.Point.Scheme.Name != pts[i].Scheme.Name {
			t.Fatalf("outcome %d out of order: %s/%s", i, o.Point.Config, o.Point.Scheme.Name)
		}
		serial, err := o.Built.System.Run(RunConfig{Scheme: o.Point.Scheme})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, o.Result) {
			t.Errorf("%s/%s: concurrent sweep result differs from serial run",
				o.Point.Config, o.Point.Scheme.Name)
		}
		if o.Result.ReductionC != serial.BaselinePeakC-serial.MigratedPeakC {
			t.Errorf("%s/%s: inconsistent reduction", o.Point.Config, o.Point.Scheme.Name)
		}
	}
}

// TestSweepCancellation: the façade propagates context cancellation.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, SweepGrid([]string{"A"}, Schemes(), nil),
		SweepOptions{Scale: testScale}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepRunnerReuse: a persistent runner reuses its build cache across
// Run calls.
func TestSweepRunnerReuse(t *testing.T) {
	r := NewSweepRunner(SweepOptions{Scale: testScale})
	first, err := r.Run(context.Background(), []SweepPoint{{Config: "D", Scheme: XYShift()}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(context.Background(), []SweepPoint{{Config: "D", Scheme: Rot()}})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Built != second[0].Built {
		t.Error("runner rebuilt configuration D on the second sweep")
	}
}
